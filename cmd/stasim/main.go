// Command stasim runs a single benchmark on a single superthreaded
// processor configuration and prints its statistics.
//
// Usage:
//
//	stasim -bench mcf -config wth-wp-wec -tus 8
//	stasim -bench equake -config orig -tus 1 -scale 2
//	stasim -file examples/program.sta -config wth-wp-wec
//	stasim -bench gzip -disasm | head
//	stasim -list
//
// Observability (see README "Observability" and "Live telemetry"):
//
//	stasim -bench mcf -config wth-wp-wec -metrics m.json -timeline t.trace.json -interval 1000
//	stasim -bench mcf -metrics-csv series.csv -interval 500
//	stasim -bench mcf -scale 4 -progress
//	stasim -bench mcf -telemetry-addr 127.0.0.1:9180 -telemetry-dir tel/
//
// Fill attribution (see README "Attribution"):
//
//	stasim -bench mcf -config wth-wp-wec -attrib
//	stasim -bench mcf -config vc -attrib -attrib-top 10 -attrib-json report.json
//
// Cross-run analytics (see README "Cross-run analytics"):
//
//	stasim -bench mcf -config wth-wp-wec -archive runs/
//	simql list -root runs/
//
// Workload synthesis (see README "Workload synthesis"):
//
//	stasim -wgen-seed 7 -config wth-wp-wec
//	stasim -wgen-genome corpus/g0123456789abcdef.wgen -config wth-wp-wec -attrib
//	stasim -wgen-genome 'wgen1 seed=0x0000000000000007 win=2x8 ...'
//
// Distributed sweeps (see README "Distributed sweeps"): -fleet-connect
// turns the process into a fleet worker that claims, simulates, and
// returns cells for an `experiments -fleet-listen` coordinator:
//
//	stasim -fleet-connect http://127.0.0.1:9381 -fleet-slots 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/asm"
	"repro/internal/attrib"
	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/interp"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/runstore"
	"repro/internal/sample"
	"repro/internal/simerr"
	"repro/internal/sta"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wgen"
	"repro/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark (vpr, gzip, mcf, parser, equake, mesa)")
		cfgName = flag.String("config", "orig", "processor configuration (orig, vc, wp, wth, wth-wp, wth-wp-vc, wth-wp-wec, nlp)")
		tus     = flag.Int("tus", 8, "thread units")
		scale   = flag.Int("scale", 1, "workload scale factor")
		entries = flag.Int("side", 8, "side buffer entries (WEC/VC/PB)")
		l1kb    = flag.Int("l1", 8, "L1 data cache size in KB")
		l1way   = flag.Int("assoc", 1, "L1 data cache associativity")
		l2kb    = flag.Int("l2", 64, "shared L2 size in KB")
		file    = flag.String("file", "", "assemble and run a .sta source file instead of a benchmark")

		wgenGenome = flag.String("wgen-genome", "", "run a synthesized workload: a canonical genome line ('wgen1 seed=... ...') or a .wgen file")
		wgenSeed   = flag.Uint64("wgen-seed", 0, "synthesize and run the deterministic random genome for this seed (overridden by -wgen-genome)")

		disasm  = flag.Bool("disasm", false, "print the program listing instead of simulating")
		doTrace = flag.Bool("trace", false, "stream thread-lifecycle events to stderr")
		list    = flag.Bool("list", false, "list benchmarks and configurations")

		doAttrib     = flag.Bool("attrib", false, "attach the fill-attribution collector and print its summary")
		attribJSON   = flag.String("attrib-json", "", "write the attribution report as JSON to this file (implies -attrib)")
		attribTop    = flag.Int("attrib-top", attrib.DefaultTopN, "per-PC rows in the attribution report")
		attribWindow = flag.Uint64("attrib-window", 0, "pollution re-miss window in cycles (0 = default)")

		sampleWarmup  = flag.Uint64("sample-warmup", 0, "sampled simulation: detailed-but-unmeasured warmup instructions per period")
		sampleMeasure = flag.Uint64("sample-measure", 0, "sampled simulation: measured detailed instructions per period (0 = fully detailed run)")
		samplePeriod  = flag.Uint64("sample-period", 0, "sampled simulation: period length in instructions (must exceed warmup+measure; the rest fast-forwards)")
		sampleSeed    = flag.Uint64("sample-seed", 0, "sampled simulation: bootstrap RNG seed for the confidence intervals (0 = default)")

		dumpOnHang = flag.Bool("dump-on-hang", false, "on a deadlock or runaway failure, print the per-TU machine state dump to stderr")
		timeout    = flag.Duration("timeout", 0, "wall-clock limit for the run (0 = none)")
		watchdog   = flag.Uint64("watchdog", 0, "forward-progress watchdog window in cycles (0 = default)")

		progress      = flag.Bool("progress", false, "print a one-line heartbeat to stderr every second (cycle, cycles/s, IPC, est. remaining)")
		telemetryAddr = flag.String("telemetry-addr", "", "serve live introspection HTTP (/metrics, /runs, /healthz, /debug/pprof) on this address")
		telemetryDir  = flag.String("telemetry-dir", "", "write the span journal (spans.jsonl) and flight-recorder dumps into this directory")

		archiveDir = flag.String("archive", "", "archive this run's manifest into a content-addressed run archive (query with simql)")

		fleetConnect = flag.String("fleet-connect", "", "run as a fleet worker against this coordinator URL instead of simulating locally")
		fleetSlots   = flag.Int("fleet-slots", 1, "concurrent cells a fleet worker simulates")
		fleetName    = flag.String("fleet-name", "", "stable fleet worker name (default <hostname>-<pid>)")

		metricsOut  = flag.String("metrics", "", "write metrics JSON (counters, interval series, histograms) to this file")
		metricsCSV  = flag.String("metrics-csv", "", "write the interval time series as CSV to this file")
		timelineOut = flag.String("timeline", "", "write a Perfetto/chrome://tracing trace JSON to this file")
		interval    = flag.Uint64("interval", 10000, "sampling interval in cycles for the metrics time series")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	if *list {
		fmt.Println("benchmarks:")
		for _, w := range workload.All() {
			fmt.Printf("  %-8s (%s, %s)\n", w.Short, w.Name, w.Suite)
		}
		fmt.Println("configurations:")
		for _, n := range config.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	if *fleetConnect != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		err := fleet.RunWorker(ctx, fleet.WorkerConfig{
			URL:   *fleetConnect,
			Name:  *fleetName,
			Slots: *fleetSlots,
		})
		if err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		return
	}

	wgenSeedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "wgen-seed" {
			wgenSeedSet = true
		}
	})

	var prog *isa.Program
	title := *bench
	if *wgenGenome != "" || wgenSeedSet {
		var g wgen.Genome
		var err error
		if *wgenGenome != "" {
			g, err = wgen.Load(*wgenGenome)
			fatal(err)
		} else {
			g = wgen.Random(*wgenSeed)
		}
		prog, err = g.Program()
		fatal(err)
		// The bench name embeds the genome hash, so -archive manifests of
		// generated runs are greppable by genome (simql grep <hash>).
		*bench = g.BenchName()
		title = fmt.Sprintf("%s [%s]", g.BenchName(), g.Canonical())
	} else if *file != "" {
		src, err := os.ReadFile(*file)
		fatal(err)
		prog, err = asm.Parse(string(src))
		fatal(err)
		title = *file
	} else {
		w, err := workload.ByName(*bench)
		fatal(err)
		prog, err = w.Build(*scale)
		fatal(err)
		title = fmt.Sprintf("%s (%s)", w.Short, w.Name)
	}

	if *disasm {
		for pc, in := range prog.Insts {
			for name, at := range prog.Symbols {
				if at == int64(pc) && isLabel(prog, name) {
					fmt.Printf("%s:\n", name)
				}
			}
			fmt.Printf("%5d  %s\n", pc, in)
		}
		return
	}

	cfg := config.Main(*tus)
	cfg.WatchdogCycles = *watchdog
	cfg.Mem.SideEntries = *entries
	cfg.Mem.L1DSize = *l1kb * 1024
	cfg.Mem.L1DAssoc = *l1way
	cfg.Mem.L2Size = *l2kb * 1024
	fatal(config.Apply(config.Name(*cfgName), &cfg))

	m, err := sta.New(cfg, prog)
	fatal(err)
	sc := sample.Config{
		WarmupInsts:  *sampleWarmup,
		MeasureInsts: *sampleMeasure,
		PeriodInsts:  *samplePeriod,
		Seed:         *sampleSeed,
	}
	fatal(sc.Validate())
	m.Sample = sc
	if *doTrace {
		m.Trace = trace.Writer{W: os.Stderr}
	}
	var col *metrics.Collector
	if *metricsOut != "" || *metricsCSV != "" || *timelineOut != "" {
		sampleEvery := *interval
		if *metricsOut == "" && *metricsCSV == "" {
			sampleEvery = 0 // timeline only: no series needed
		}
		col = metrics.NewCollector(sampleEvery)
		if *timelineOut != "" {
			col.Timeline = metrics.NewTimeline()
		}
		m.Metrics = col
	}
	var ac *attrib.Collector
	if *doAttrib || *attribJSON != "" {
		ac = attrib.NewCollector()
		ac.TopN = *attribTop
		ac.Window = *attribWindow
		m.Attrib = ac
	}
	var tr *telemetry.Run
	var cell *telemetry.Cell
	if *telemetryAddr != "" || *telemetryDir != "" {
		var terr error
		tr, terr = telemetry.Start(telemetry.Config{Addr: *telemetryAddr, Dir: *telemetryDir})
		fatal(terr)
		cell = tr.StartCell(*bench, *cfgName, 0)
		m.Tap = cell.Tap
	}
	if *progress && m.Tap == nil {
		m.Tap = &sta.ProgressTap{}
	}
	if *progress {
		// The functional reference gives the dynamic instruction count, so
		// the heartbeat can estimate remaining wall time from commit rate.
		var refInsts int64
		if ref, err := interp.Run(prog); err == nil {
			refInsts = ref.Insts
		}
		stop := make(chan struct{})
		defer close(stop)
		go heartbeat(m.Tap, refInsts, stop)
	}
	if *archiveDir != "" && *file != "" {
		fatal(fmt.Errorf("-archive needs a named benchmark; -file programs have no stable cell identity"))
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	simStart := time.Now()
	res, err := m.RunContext(ctx)
	simWall := time.Since(simStart)
	if err != nil {
		if cell != nil {
			cell.Fail(err)
			tr.Close()
		}
		var se *simerr.Error
		if *dumpOnHang && errors.As(err, &se) &&
			(se.Kind == simerr.Deadlock || se.Kind == simerr.Runaway) {
			fmt.Fprintln(os.Stderr, se.DumpState())
		}
		fatal(err)
	}
	if cell != nil {
		cell.Done(res.Stats.Cycles)
		defer tr.Close()
	}

	if *metricsOut != "" {
		fatal(writeFile(*metricsOut, func(f *os.File) error {
			return col.WriteJSON(f, res.Stats.Cycles)
		}))
	}
	if *metricsCSV != "" {
		fatal(os.WriteFile(*metricsCSV, []byte(col.SeriesCSV()), 0o644))
	}
	if *timelineOut != "" {
		fatal(writeFile(*timelineOut, func(f *os.File) error {
			return col.Timeline.WriteJSON(f)
		}))
		if d := col.Timeline.Dropped; d > 0 {
			fmt.Fprintf(os.Stderr, "timeline: %d events dropped past the %d-event cap\n",
				d, metrics.DefaultMaxEvents)
		}
	}
	if *memprofile != "" {
		fatal(writeFile(*memprofile, func(f *os.File) error {
			runtime.GC()
			return pprof.WriteHeapProfile(f)
		}))
	}

	s := &res.Stats
	fmt.Printf("benchmark        %s\n", title)
	fmt.Printf("configuration    %s, %d TUs, L1 %dKB %d-way, L2 %dKB, side %d entries\n",
		*cfgName, *tus, *l1kb, *l1way, *l2kb, *entries)
	fmt.Printf("cycles           %d\n", s.Cycles)
	fmt.Printf("commits          %d (IPC %.2f)\n", s.Commits, s.IPC())
	fmt.Printf("parallel cycles  %d (%.1f%% of time)\n", s.ParCycles,
		100*float64(s.ParCycles)/float64(s.Cycles))
	fmt.Printf("forks/aborts     %d / %d (wrong threads: %d)\n", s.Forks, s.Aborts, s.WrongThreads)
	fmt.Printf("branches         %d (%.1f%% predicted)\n", s.Branches, 100*s.BranchAccuracy())
	fmt.Printf("L1D accesses     %d (miss rate %.3f, %d misses)\n",
		s.L1DAccesses, s.L1DMissRate(), s.L1DMisses)
	fmt.Printf("L1D traffic      %d (incl. wrong execution)\n", s.L1DTraffic)
	fmt.Printf("wrong loads      %d (wrong-path %d, wrong-thread %d)\n",
		s.WrongLoads, s.WrongPathLoads, s.WrongThLoads)
	fmt.Printf("side buffer      %d hits (%d on wrong-fetched blocks), %d inserts\n",
		s.WECHits, s.WrongUseful, s.WECInserts)
	fmt.Printf("prefetches       %d issued, %d useful\n", s.PrefIssued, s.PrefUseful)
	fmt.Printf("L2               %d accesses, %d misses; DRAM fills %d\n",
		s.L2Accesses, s.L2Misses, s.MemAccesses)
	fmt.Printf("update traffic   %d bus transactions\n", s.UpdateTraffic)
	fmt.Printf("memory checksum  %#x\n", res.MemCheck)
	if sp := s.Sampled; sp != nil {
		total := sp.DetailedInsts + sp.FFInsts
		cov := 0.0
		if total > 0 {
			cov = 100 * float64(sp.DetailedInsts) / float64(total)
		}
		fmt.Printf("sampling         %d windows (warmup %d / measure %d / period %d insts)\n",
			sp.Windows, sp.WarmupInsts, sp.MeasureInsts, sp.PeriodInsts)
		fmt.Printf("  detailed       %d insts in %d cycles (%.1f%% coverage); fast-forwarded %d insts\n",
			sp.DetailedInsts, sp.DetailedCycles, cov, sp.FFInsts)
		fmt.Printf("  est. cycles    %.0f  [%.0f, %.0f] 95%% CI\n", sp.EstCycles, sp.EstCyclesLo, sp.EstCyclesHi)
		fmt.Printf("  est. IPC       %.3f  [%.3f, %.3f]\n", sp.IPC, sp.IPCLo, sp.IPCHi)
		fmt.Printf("  est. L1D miss  %.4f  [%.4f, %.4f]\n", sp.L1DMiss, sp.L1DMissLo, sp.L1DMissHi)
	}

	var rep *attrib.Report
	if ac != nil {
		rep = ac.Report(s.Cycles)
		if *attribJSON != "" {
			fatal(writeFile(*attribJSON, func(f *os.File) error { return rep.WriteJSON(f) }))
		}
		fmt.Println()
		fatal(rep.WriteText(os.Stdout, symbolLabeler(prog)))
	}

	if *archiveDir != "" {
		st, err := runstore.Open(*archiveDir)
		fatal(err)
		man := runstore.New(*bench, *scale, cfg, res)
		man.Tool = "stasim"
		man.GitRev = runstore.GitRev()
		man.WallSeconds = simWall.Seconds()
		man.Attrib = runstore.SummarizeAttrib(rep)
		if tr != nil {
			man.RunID = tr.ID
			if tr.Dir() != "" {
				man.Artifacts = map[string]string{"spans": filepath.Join(tr.Dir(), "spans.jsonl")}
			}
		}
		if *metricsOut != "" {
			if man.Artifacts == nil {
				man.Artifacts = map[string]string{}
			}
			man.Artifacts["metrics"] = *metricsOut
		}
		if *attribJSON != "" {
			if man.Artifacts == nil {
				man.Artifacts = map[string]string{}
			}
			man.Artifacts["attrib"] = *attribJSON
		}
		fatal(st.Put(man))
		path := st.ManifestPath(man)
		fatal(st.Close())
		fmt.Printf("archived         %s\n", path)
	}
}

// heartbeat prints one progress line per second from the machine's tap:
// current cycle, simulation speed, aggregate IPC, and — when the functional
// reference ran — the estimated wall time remaining at the current commit
// rate.
func heartbeat(tap *sta.ProgressTap, refInsts int64, stop <-chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	var lastCycle, lastCommits uint64
	lastWall := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			cycle, commits := tap.Latest()
			dt := now.Sub(lastWall).Seconds()
			if dt <= 0 {
				continue
			}
			cps := float64(cycle-lastCycle) / dt
			ips := float64(commits-lastCommits) / dt
			var ipc float64
			if cycle > 0 {
				ipc = float64(commits) / float64(cycle)
			}
			line := fmt.Sprintf("progress: cycle %d (%.0f cyc/s, IPC %.2f)", cycle, cps, ipc)
			if rem := refInsts - int64(commits); refInsts > 0 && ips > 0 && rem > 0 {
				eta := time.Duration(float64(rem) / ips * float64(time.Second))
				line += fmt.Sprintf(", est. %s remaining", eta.Round(time.Second))
			}
			fmt.Fprintln(os.Stderr, line)
			lastCycle, lastCommits, lastWall = cycle, commits, now
		}
	}
}

// symbolLabeler maps a PC to the nearest preceding code label plus offset,
// so the attribution top-PC table reads in source terms.
func symbolLabeler(p *isa.Program) func(pc int) string {
	type sym struct {
		at   int64
		name string
	}
	var syms []sym
	for name, at := range p.Symbols {
		if isLabel(p, name) {
			syms = append(syms, sym{at, name})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].at != syms[j].at {
			return syms[i].at < syms[j].at
		}
		return syms[i].name < syms[j].name
	})
	return func(pc int) string {
		i := sort.Search(len(syms), func(i int) bool { return syms[i].at > int64(pc) })
		if i == 0 {
			return ""
		}
		s := syms[i-1]
		if off := int64(pc) - s.at; off != 0 {
			return fmt.Sprintf("%s+%d", s.name, off)
		}
		return s.name
	}
}

// isLabel reports whether a symbol is a code label (its value is a valid
// instruction index rather than a data address).
func isLabel(p *isa.Program, name string) bool {
	v := p.Symbols[name]
	return v >= 0 && v < int64(len(p.Insts)) && v < asm.DataBase
}

// writeFile creates path and streams write's output into it.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
