package main

import (
	"flag"
	"fmt"
	"html"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/runstore"
)

// chartSeries is one series of a dashboard chart; Values align with the
// chart's Cats, nil marking a missing cell.
type chartSeries struct {
	Name   string     `json:"name"`
	Values []*float64 `json:"values"`
}

// chart is one dashboard panel's data, rendered client-side from the
// embedded JSON. Kind selects the renderer: "bars" (grouped), "stack"
// (stacked bars), or "lines".
type chart struct {
	ID       string        `json:"id"`
	Kind     string        `json:"kind"`
	Title    string        `json:"title"`
	Subtitle string        `json:"subtitle,omitempty"`
	YLabel   string        `json:"ylabel"`
	Cats     []string      `json:"cats"`
	Series   []chartSeries `json:"series"`
	// RefLine draws a horizontal reference (e.g. speedup = 1). Zero = none.
	RefLine float64 `json:"refline,omitempty"`
}

// reportData is the JSON blob embedded in the dashboard.
type reportData struct {
	Title  string  `json:"title"`
	Charts []chart `json:"charts"`
}

// cmdReport renders the archive (and, when present, the perfbench history)
// as one self-contained HTML file: no external scripts, styles, fonts, or
// images — it can be mailed, attached to CI, or opened from file://.
func cmdReport(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	root := fs.String("root", "runs", "archive root directory")
	out := fs.String("o", "report.html", "output HTML file")
	base := fs.String("base", "config=orig", "baseline selector speedups are measured against")
	perfHist := fs.String("perf-history", "perf/history", "perfbench history directory for the trend panel (\"\" disables)")
	title := fs.String("title", "Cross-run analytics", "dashboard title")
	fs.Parse(args)

	ms, err := openAll(*root)
	if err != nil {
		return fail(err)
	}
	baseline, berr := selectFrom(ms, *base)
	data := reportData{Title: *title}
	var tables []string

	if berr != nil {
		fmt.Fprintf(os.Stderr, "simql report: no baseline (%v); speedup and pareto panels omitted\n", berr)
	} else {
		if c, ok := speedupChart(ms, baseline, *base); ok {
			data.Charts = append(data.Charts, c)
			tables = append(tables, chartTable(c, "%.3f"))
		}
	}
	if c, ok := attribChart(ms); ok {
		data.Charts = append(data.Charts, c)
		tables = append(tables, chartTable(c, "%.0f"))
	}
	if *perfHist != "" {
		if c, ok := perfTrendChart(*perfHist); ok {
			data.Charts = append(data.Charts, c)
			tables = append(tables, chartTable(c, "%.0f"))
		}
	}
	var paretoHTML string
	if berr == nil {
		if pts, err := runstore.Pareto(ms, baseline); err == nil && len(pts) > 0 {
			paretoHTML = paretoTable(pts, *base)
		}
	}
	if len(data.Charts) == 0 && paretoHTML == "" {
		return fail(fmt.Errorf("simql report: nothing to render (no baseline pairs, no attribution, no perf history)"))
	}

	doc, err := renderHTML(&data, tables, paretoHTML, manifestTable(ms), *root, len(ms))
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %s (%d panel(s), %d manifests)\n", *out, len(data.Charts), len(ms))
	return 0
}

// groupLabel names a configuration group compactly for legends.
func groupLabel(m *runstore.Manifest) string {
	l := fmt.Sprintf("%s/%dtu", m.Config, m.TUs)
	if m.SideKind != "none" && m.SideEntries > 0 {
		l += fmt.Sprintf("/%s%d", m.SideKind, m.SideEntries)
	}
	return l
}

// maxSeries caps a panel's series count at the categorical palette size;
// overflow is reported, never silently dropped.
const maxSeries = 8

// speedupChart builds the grouped-bar speedup panel: per benchmark, each
// non-baseline configuration's speedup over the baseline cell.
func speedupChart(ms, baseline []*runstore.Manifest, baseExpr string) (chart, bool) {
	baseIdx := make(map[string]*runstore.Manifest)
	baseHash := make(map[string]bool)
	for _, m := range baseline {
		baseIdx[fmt.Sprintf("%s-s%d", m.Bench, m.Scale)] = m
		baseHash[m.CfgHash] = true
	}
	type group struct {
		label string
		cells map[string]*runstore.Manifest
	}
	groups := make(map[string]*group)
	var order []string
	benchSet := make(map[string]bool)
	for _, m := range ms {
		if baseHash[m.CfgHash] {
			continue
		}
		if _, ok := baseIdx[fmt.Sprintf("%s-s%d", m.Bench, m.Scale)]; !ok {
			continue
		}
		g, ok := groups[m.CfgHash]
		if !ok {
			g = &group{label: groupLabel(m), cells: make(map[string]*runstore.Manifest)}
			groups[m.CfgHash] = g
			order = append(order, m.CfgHash)
		}
		g.cells[fmt.Sprintf("%s-s%d", m.Bench, m.Scale)] = m
		benchSet[m.Bench] = true
	}
	if len(groups) == 0 {
		return chart{}, false
	}
	sort.Slice(order, func(i, j int) bool { return groups[order[i]].label < groups[order[j]].label })
	if len(order) > maxSeries {
		var dropped []string
		for _, h := range order[maxSeries:] {
			dropped = append(dropped, groups[h].label)
		}
		fmt.Fprintf(os.Stderr, "simql report: %d configuration groups exceed the %d-series panel; dropping %s\n",
			len(order), maxSeries, strings.Join(dropped, ", "))
		order = order[:maxSeries]
	}
	var benches []string
	for b := range benchSet {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	c := chart{
		ID:       "speedup",
		Kind:     "bars",
		Title:    "Speedup by benchmark",
		Subtitle: fmt.Sprintf("execution-time speedup over baseline %q; 1.0 = no change", baseExpr),
		YLabel:   "speedup",
		Cats:     benches,
		RefLine:  1,
	}
	for _, ch := range order {
		g := groups[ch]
		s := chartSeries{Name: g.label}
		for _, b := range benches {
			var v *float64
			// Pair at any scale present for both sides; prefer scale 1.
			for _, m := range g.cells {
				if m.Bench != b {
					continue
				}
				base := baseIdx[fmt.Sprintf("%s-s%d", m.Bench, m.Scale)]
				if base != nil && m.Stats.Cycles > 0 {
					sp := float64(base.Stats.Cycles) / float64(m.Stats.Cycles)
					v = &sp
					break
				}
			}
			s.Values = append(s.Values, v)
		}
		c.Series = append(c.Series, s)
	}
	return c, true
}

// attribChart builds the stacked fill-classification panel from every
// archived cell that carried the attribution collector.
func attribChart(ms []*runstore.Manifest) (chart, bool) {
	var cells []*runstore.Manifest
	for _, m := range ms {
		if m.Attrib != nil {
			cells = append(cells, m)
		}
	}
	if len(cells) == 0 {
		return chart{}, false
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Bench != cells[j].Bench {
			return cells[i].Bench < cells[j].Bench
		}
		return groupLabel(cells[i]) < groupLabel(cells[j])
	})
	const maxCells = 24
	if len(cells) > maxCells {
		fmt.Fprintf(os.Stderr, "simql report: attribution panel capped at %d of %d cells\n", maxCells, len(cells))
		cells = cells[:maxCells]
	}
	c := chart{
		ID:       "fillclass",
		Kind:     "stack",
		Title:    "Speculative fill classification",
		Subtitle: "wrong-execution fills by outcome (attribution collector)",
		YLabel:   "fills",
	}
	classes := []struct {
		name string
		get  func(*runstore.AttribSummary) uint64
	}{
		{"useful", func(a *runstore.AttribSummary) uint64 { return a.Useful }},
		{"late", func(a *runstore.AttribSummary) uint64 { return a.Late }},
		{"useless", func(a *runstore.AttribSummary) uint64 { return a.Useless }},
		{"polluting", func(a *runstore.AttribSummary) uint64 { return a.Polluting }},
	}
	for _, m := range cells {
		label := m.Bench
		if len(cells) > 1 && groupLabel(m) != groupLabel(cells[0]) {
			label = m.Bench + " " + groupLabel(m)
		}
		c.Cats = append(c.Cats, label)
	}
	for _, cl := range classes {
		s := chartSeries{Name: cl.name}
		for _, m := range cells {
			v := float64(cl.get(m.Attrib))
			s.Values = append(s.Values, &v)
		}
		c.Series = append(c.Series, s)
	}
	return c, true
}

// perfTrendChart plots simulator throughput (sim cycles per host second)
// across the perfbench history snapshots for a few headline scenarios.
func perfTrendChart(dir string) (chart, bool) {
	glob, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(glob) == 0 {
		return chart{}, false
	}
	sort.Strings(glob)
	const maxSnaps = 30
	if len(glob) > maxSnaps {
		glob = glob[len(glob)-maxSnaps:]
	}
	headline := []string{
		"micro/cycle-loop/1tu",
		"sim/mcf/wth-wp-wec/8tu",
		"sim/mcf/orig/8tu",
		"scale/mcf/wth-wp-wec/32tu/par4",
	}
	c := chart{
		ID:       "perftrend",
		Kind:     "lines",
		Title:    "Simulator throughput trend",
		Subtitle: fmt.Sprintf("sim cycles per host second across perfbench snapshots (%s)", dir),
		YLabel:   "cycles/s",
	}
	type snap struct {
		label string
		rates map[string]float64
	}
	var snaps []snap
	for _, path := range glob {
		rep, _, err := loadPerf(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simql report: skipping unreadable snapshot %s: %v\n", path, err)
			continue
		}
		label := rep.Generated
		if len(label) >= 16 {
			label = label[5:16] // MM-DDTHH:MM
		}
		s := snap{label: label, rates: make(map[string]float64)}
		for _, e := range rep.Results {
			if e.NsPerOp > 0 {
				s.rates[e.Name] = e.SimCyclesPerOp / (e.NsPerOp / 1e9)
			}
		}
		snaps = append(snaps, s)
	}
	if len(snaps) == 0 {
		return chart{}, false
	}
	for _, s := range snaps {
		c.Cats = append(c.Cats, s.label)
	}
	for _, name := range headline {
		ser := chartSeries{Name: name}
		any := false
		for _, s := range snaps {
			if v, ok := s.rates[name]; ok {
				vv := v
				ser.Values = append(ser.Values, &vv)
				any = true
			} else {
				ser.Values = append(ser.Values, nil)
			}
		}
		if any {
			c.Series = append(c.Series, ser)
		}
	}
	if len(c.Series) == 0 {
		return chart{}, false
	}
	return c, true
}

// chartTable renders a chart's data as an HTML table (the accessible
// non-graphic view shipped with every panel).
func chartTable(c chart, valFmt string) string {
	var b strings.Builder
	b.WriteString(`<details class="tbl"><summary>Data table</summary><table><thead><tr><th></th>`)
	for _, s := range c.Series {
		fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(s.Name))
	}
	b.WriteString("</tr></thead><tbody>")
	for i, cat := range c.Cats {
		fmt.Fprintf(&b, "<tr><th>%s</th>", html.EscapeString(cat))
		for _, s := range c.Series {
			if i < len(s.Values) && s.Values[i] != nil {
				fmt.Fprintf(&b, "<td>"+valFmt+"</td>", *s.Values[i])
			} else {
				b.WriteString("<td>–</td>")
			}
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</tbody></table></details>")
	return b.String()
}

// paretoTable renders the speedup-vs-cost frontier section.
func paretoTable(pts []runstore.ParetoPoint, baseExpr string) string {
	var b strings.Builder
	b.WriteString(`<section class="panel"><h2>Speedup vs hardware cost</h2>`)
	fmt.Fprintf(&b, `<p class="sub">weighted-average speedup over %s against KB of speculation-visible SRAM; ★ marks the Pareto frontier</p>`,
		html.EscapeString(baseExpr))
	b.WriteString(`<table class="flat"><thead><tr><th>config</th><th>TUs</th><th>side</th><th>cost (KB)</th><th>speedup</th><th>benches</th><th></th></tr></thead><tbody>`)
	for _, p := range pts {
		mark := ""
		if p.Frontier {
			mark = "★"
		}
		side := p.SideKind
		if side != "none" {
			side = fmt.Sprintf("%s×%d", p.SideKind, p.SideEnts)
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%.1f</td><td>%.3f</td><td>%d</td><td>%s</td></tr>",
			html.EscapeString(p.Config), p.TUs, html.EscapeString(side), p.CostKB, p.Speedup, p.Benches, mark)
	}
	b.WriteString("</tbody></table></section>")
	return b.String()
}

// manifestTable renders the full archive listing.
func manifestTable(ms []*runstore.Manifest) string {
	var b strings.Builder
	b.WriteString(`<details class="tbl manifests"><summary>All archived manifests</summary><table><thead><tr>` +
		`<th>cfg hash</th><th>config</th><th>TUs</th><th>side</th><th>bench</th><th>scale</th>` +
		`<th>cycles</th><th>IPC</th><th>L1D miss</th><th>tool</th><th>git</th><th>run</th></tr></thead><tbody>`)
	for _, m := range ms {
		side := m.SideKind
		if side != "none" {
			side = fmt.Sprintf("%s×%d", m.SideKind, m.SideEntries)
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%.3f</td><td>%.4f</td><td>%s</td><td>%s</td><td>%s</td></tr>",
			html.EscapeString(m.CfgHash[:10]), html.EscapeString(m.Config), m.TUs, html.EscapeString(side),
			html.EscapeString(m.Bench), m.Scale, m.Stats.Cycles, m.IPC(), m.Stats.L1DMissRate(),
			html.EscapeString(m.Tool), html.EscapeString(m.GitRev), html.EscapeString(m.RunID))
	}
	b.WriteString("</tbody></table></details>")
	return b.String()
}
