package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/runstore"
)

// cmdDiff is the statistical comparison engine's CLI: it pairs two
// archived selections per (benchmark, scale), reports each metric's mean
// relative delta with a bootstrap confidence interval over the benchmark
// set, and exits nonzero on a significant regression. With -perf it
// instead compares two perfbench reports (files, or history directories
// whose latest snapshot is taken) under perfbench's own deterministic
// gates — so CI can gate both simulation quality and simulator speed
// through one tool.
func cmdDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	root := fs.String("root", "runs", "archive root directory")
	tol := fs.Float64("tol", 0.01, "relative regression tolerated before the exit code trips")
	boot := fs.Int("boot", 10000, "bootstrap resamples")
	seed := fs.Uint64("seed", 0, "bootstrap RNG seed (0 = fixed default; any value is deterministic)")
	conf := fs.Float64("conf", 0.95, "confidence interval mass")
	format := fs.String("format", "table", "output format: table or json")
	perf := fs.Bool("perf", false, "compare two perfbench reports (files or history dirs) instead of archive selections")
	strict := fs.Bool("strict", false, "with -perf, also gate wall-clock ns/op")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fail(fmt.Errorf("simql diff: want exactly two arguments (selector A and selector B, or two -perf reports)"))
	}
	if *perf {
		return diffPerf(fs.Arg(0), fs.Arg(1), *tol, *strict)
	}

	ms, err := openAll(*root)
	if err != nil {
		return fail(err)
	}
	a, err := selectFrom(ms, fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	b, err := selectFrom(ms, fs.Arg(1))
	if err != nil {
		return fail(err)
	}
	pairs, err := runstore.PairByBench(a, b)
	if err != nil {
		return fail(err)
	}

	var deltas []runstore.DeltaStat
	for _, met := range runstore.DiffMetrics() {
		deltas = append(deltas, runstore.Compare(pairs, met, *boot, *seed, *conf))
	}

	if *format == "json" {
		if err := writeJSON(os.Stdout, map[string]any{
			"a": fs.Arg(0), "b": fs.Arg(1), "pairs": len(pairs), "metrics": deltas,
		}); err != nil {
			return fail(err)
		}
	} else {
		fmt.Printf("diff: A=%q vs B=%q over %d paired benchmark(s)\n", fs.Arg(0), fs.Arg(1), len(pairs))
		fmt.Printf("positive delta = B better; CI is the %.0f%% bootstrap interval over benchmarks\n\n", *conf*100)
		for _, d := range deltas {
			verdict := "ok"
			if d.Regressed(*tol) {
				verdict = "REGRESSED"
			} else if d.Mean > *tol && d.Lo > 0 {
				verdict = "improved"
			}
			fmt.Printf("%-14s mean %+7.2f%%  CI [%+7.2f%%, %+7.2f%%]  %s\n",
				d.Metric, d.Mean*100, d.Lo*100, d.Hi*100, verdict)
			for _, b := range d.Benches {
				fmt.Printf("    %-8s %14.4f -> %14.4f  (%+.2f%%)\n", b.Bench, b.A, b.B, b.Rel*100)
			}
		}
	}
	for _, d := range deltas {
		if d.Regressed(*tol) {
			fmt.Fprintf(os.Stderr, "simql diff: %s regressed %.2f%% (CI [%+.2f%%, %+.2f%%], tolerance %.2f%%)\n",
				d.Metric, -d.Mean*100, d.Lo*100, d.Hi*100, *tol*100)
			return 1
		}
	}
	return 0
}

// perfReport mirrors cmd/perfbench's report schema (kept in sync by the
// analytics smoke test; the fields simql needs are a stable subset).
type perfReport struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	HostCPUs   int    `json:"host_cpus"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Results    []struct {
		Name           string  `json:"name"`
		NsPerOp        float64 `json:"ns_per_op"`
		AllocsPerOp    int64   `json:"allocs_per_op"`
		SimCyclesPerOp float64 `json:"sim_cycles_per_op"`
	} `json:"results"`
}

// loadPerf reads a perfbench report from a file, or the lexically latest
// *.json snapshot when path is a directory (history snapshots are named by
// UTC timestamp, so lexical order is chronological order).
func loadPerf(path string) (*perfReport, string, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		glob, err := filepath.Glob(filepath.Join(path, "*.json"))
		if err != nil || len(glob) == 0 {
			return nil, "", fmt.Errorf("simql diff -perf: no snapshots in %s", path)
		}
		sort.Strings(glob)
		path = glob[len(glob)-1]
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var r perfReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	return &r, path, nil
}

func diffPerf(aPath, bPath string, tol float64, strict bool) int {
	a, aFile, err := loadPerf(aPath)
	if err != nil {
		return fail(err)
	}
	b, bFile, err := loadPerf(bPath)
	if err != nil {
		return fail(err)
	}
	if a.GoMaxProcs != 0 && b.GoMaxProcs != 0 && a.GoMaxProcs != b.GoMaxProcs {
		fmt.Fprintf(os.Stderr, "simql diff -perf: GOMAXPROCS differ (%d vs %d); wall-clock deltas are not comparable\n",
			a.GoMaxProcs, b.GoMaxProcs)
		if strict {
			return 1
		}
	}
	if a.HostCPUs != 0 && b.HostCPUs != 0 && a.HostCPUs != b.HostCPUs {
		fmt.Fprintf(os.Stderr, "simql diff -perf: warning: host CPU counts differ (%d vs %d); ns/op deltas are indicative only\n",
			a.HostCPUs, b.HostCPUs)
	}
	byName := make(map[string]int, len(a.Results))
	for i, e := range a.Results {
		byName[e.Name] = i
	}
	fmt.Printf("perf diff: %s (%s) -> %s (%s)\n\n", aFile, a.Generated, bFile, b.Generated)
	var bad []string
	for _, e := range b.Results {
		i, ok := byName[e.Name]
		if !ok {
			continue
		}
		base := a.Results[i]
		rel := func(now, then float64) float64 {
			if then == 0 {
				return 0
			}
			return now/then - 1
		}
		gate := func(metric string, now, then float64) {
			if then > 0 && now > then*(1+tol) {
				bad = append(bad, fmt.Sprintf("%s: %s regressed %.1f%% (%.0f -> %.0f)",
					e.Name, metric, rel(now, then)*100, then, now))
			}
		}
		gate("allocs/op", float64(e.AllocsPerOp), float64(base.AllocsPerOp))
		gate("sim-cycles/op", e.SimCyclesPerOp, base.SimCyclesPerOp)
		if strict {
			gate("ns/op", e.NsPerOp, base.NsPerOp)
		}
		fmt.Printf("%-36s ns/op %+7.1f%%  allocs/op %+7.1f%%  sim-cycles/op %+7.1f%%\n",
			e.Name, rel(e.NsPerOp, base.NsPerOp)*100,
			rel(float64(e.AllocsPerOp), float64(base.AllocsPerOp))*100,
			rel(e.SimCyclesPerOp, base.SimCyclesPerOp)*100)
	}
	if len(bad) > 0 {
		fmt.Fprintln(os.Stderr)
		for _, line := range bad {
			fmt.Fprintln(os.Stderr, "REGRESSION:", line)
		}
		return 1
	}
	fmt.Printf("\nno regressions beyond %.0f%% tolerance\n", tol*100)
	return 0
}

// writeJSON pretty-prints v to w.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
