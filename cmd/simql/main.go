// Command simql queries the content-addressed run archive that the
// experiments harness and stasim write with -archive: list and grep
// manifests, statistically compare two configurations, compute the
// speedup-vs-hardware-cost Pareto frontier, and render a self-contained
// HTML dashboard.
//
// Usage:
//
//	simql list  [-root runs] [selector]
//	simql show  [-root runs] <selector>
//	simql grep  [-root runs] <regexp>
//	simql diff  [-root runs] [-tol 0.01] <selector A> <selector B>
//	simql diff  -perf perf/BENCH_baseline.json BENCH_speed.json
//	simql pareto [-root runs] -base <selector> [candidate selector]
//	simql report [-root runs] [-o report.html] [-base <selector>] [-perf-history perf/history]
//
// A selector is a comma-separated list of k=v filters over the manifest
// fields (config=wth-wp-wec,tus=8,side=16 — see `simql help selectors`).
// `diff` pairs the two selections per (benchmark, scale), reports mean
// relative deltas with bootstrap confidence intervals over the benchmark
// set, and exits nonzero when a metric shows a significant regression —
// the cross-run generalization of `perfbench -check`.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"

	"repro/internal/runstore"
)

const selectorHelp = `selector syntax: comma-separated k=v filters, all must match.

  keys:
    bench=mcf          benchmark short name
    config=wth-wp-wec  paper configuration name (or "custom")
    tus=8              thread units
    scale=1            workload scale factor
    side=16            side-buffer entries (WEC/VC/PB)
    sidekind=wec       side-buffer kind (none, vc, wec, pb)
    l1=8  assoc=1      L1D geometry (KB, ways)
    l2=64 memlat=100   L2 size (KB), DRAM latency
    hash=c3f2          CfgHash prefix (the content address)
    run=20260809-...   telemetry run ID
    tool=experiments   producing tool (experiments, stasim)
    key=NumTUs:8       substring of the full memo key

  a bare term (no '=') matches a configuration name, then a CfgHash prefix:
    simql list wth-wp-wec
    simql diff "orig,tus=8" "wth-wp-wec,tus=8,side=16"`

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return cmdList(rest)
	case "show":
		return cmdShow(rest)
	case "grep":
		return cmdGrep(rest)
	case "diff":
		return cmdDiff(rest)
	case "pareto":
		return cmdPareto(rest)
	case "report":
		return cmdReport(rest)
	case "help", "-h", "-help", "--help":
		if len(rest) > 0 && rest[0] == "selectors" {
			fmt.Println(selectorHelp)
			return 0
		}
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "simql: unknown command %q\n\n", cmd)
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: simql <command> [flags] [args]

commands:
  list    list archived manifests (optionally filtered by a selector)
  show    print matching manifests as JSON
  grep    list manifests matching a regexp (memo key, cell key, config, run, rev)
  diff    paired statistical comparison of two selections (or -perf reports)
  pareto  speedup-vs-hardware-cost frontier against a baseline selection
  report  render a self-contained HTML dashboard
  help    selectors: 'simql help selectors'`)
}

// openAll opens the archive and returns every manifest.
func openAll(root string) ([]*runstore.Manifest, error) {
	st, err := runstore.Open(root)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	ms := st.All()
	if len(ms) == 0 {
		return nil, fmt.Errorf("simql: archive %s is empty (produce manifests with `experiments -archive %s` or `stasim -archive %s`)", root, root, root)
	}
	return ms, nil
}

// selectFrom applies an optional selector expression to the manifest set.
func selectFrom(ms []*runstore.Manifest, expr string) ([]*runstore.Manifest, error) {
	if strings.TrimSpace(expr) == "" {
		return ms, nil
	}
	sel, err := runstore.ParseSelector(expr)
	if err != nil {
		return nil, err
	}
	out := runstore.Select(ms, sel)
	if len(out) == 0 {
		return nil, fmt.Errorf("simql: no manifests match %q", expr)
	}
	return out, nil
}

func cmdList(args []string) int {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	root := fs.String("root", "runs", "archive root directory")
	format := fs.String("format", "table", "output format: table or csv")
	fs.Parse(args)
	ms, err := openAll(*root)
	if err == nil {
		ms, err = selectFrom(ms, strings.Join(fs.Args(), ","))
	}
	if err != nil {
		return fail(err)
	}
	header := "%-10s %-11s %3s %-4s %4s %5s %-8s %2s %12s %6s %7s %s\n"
	if *format == "csv" {
		fmt.Println("cfg_hash,config,tus,sidekind,side,l1kb,bench,scale,cycles,ipc,l1d_miss,tool")
	} else {
		fmt.Printf(header, "CFGHASH", "CONFIG", "TUS", "SIDE", "ENTS", "L1KB", "BENCH", "SC", "CYCLES", "IPC", "MISS", "TOOL")
	}
	for _, m := range ms {
		if *format == "csv" {
			fmt.Printf("%s,%s,%d,%s,%d,%d,%s,%d,%d,%.4f,%.4f,%s\n",
				m.CfgHash, m.Config, m.TUs, m.SideKind, m.SideEntries, m.L1KB,
				m.Bench, m.Scale, m.Stats.Cycles, m.IPC(), m.Stats.L1DMissRate(), m.Tool)
			continue
		}
		fmt.Printf(header,
			m.CfgHash[:10], m.Config, fmt.Sprint(m.TUs), m.SideKind, fmt.Sprint(m.SideEntries),
			fmt.Sprint(m.L1KB), m.Bench, fmt.Sprint(m.Scale), fmt.Sprint(m.Stats.Cycles),
			fmt.Sprintf("%.3f", m.IPC()), fmt.Sprintf("%.4f", m.Stats.L1DMissRate()), m.Tool)
	}
	return 0
}

func cmdShow(args []string) int {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	root := fs.String("root", "runs", "archive root directory")
	fs.Parse(args)
	ms, err := openAll(*root)
	if err == nil {
		ms, err = selectFrom(ms, strings.Join(fs.Args(), ","))
	}
	if err != nil {
		return fail(err)
	}
	if err := writeJSON(os.Stdout, ms); err != nil {
		return fail(err)
	}
	return 0
}

func cmdGrep(args []string) int {
	fs := flag.NewFlagSet("grep", flag.ExitOnError)
	root := fs.String("root", "runs", "archive root directory")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fail(fmt.Errorf("simql grep: want exactly one regexp argument"))
	}
	re, err := regexp.Compile(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	ms, err := openAll(*root)
	if err != nil {
		return fail(err)
	}
	hits := runstore.Grep(ms, re)
	if len(hits) == 0 {
		fmt.Fprintf(os.Stderr, "simql: no manifests match %q\n", fs.Arg(0))
		return 1
	}
	for _, m := range hits {
		fmt.Printf("%s  %s/%s tus=%d side=%s/%d tool=%s run=%s\n",
			m.CellKey, m.Bench, m.Config, m.TUs, m.SideKind, m.SideEntries, m.Tool, m.RunID)
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}
