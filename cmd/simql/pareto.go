package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/runstore"
)

// cmdPareto prints each configuration's position in the
// speedup-vs-hardware-cost plane (weighted-average speedup over the
// baseline selection, against KB of speculation-visible SRAM) and marks
// the Pareto frontier — the paper's "what does the WEC buy per KB?"
// question, computed over whatever the archive holds.
func cmdPareto(args []string) int {
	fs := flag.NewFlagSet("pareto", flag.ExitOnError)
	root := fs.String("root", "runs", "archive root directory")
	base := fs.String("base", "config=orig", "baseline selector the speedups are measured against")
	format := fs.String("format", "table", "output format: table, csv, or json")
	fs.Parse(args)

	ms, err := openAll(*root)
	if err != nil {
		return fail(err)
	}
	baseline, err := selectFrom(ms, *base)
	if err != nil {
		return fail(fmt.Errorf("baseline: %w", err))
	}
	candidates := ms
	if expr := strings.Join(fs.Args(), ","); strings.TrimSpace(expr) != "" {
		if candidates, err = selectFrom(ms, expr); err != nil {
			return fail(err)
		}
	}
	pts, err := runstore.Pareto(candidates, baseline)
	if err != nil {
		return fail(err)
	}
	if len(pts) == 0 {
		return fail(fmt.Errorf("simql pareto: no candidate shares a (bench, scale) cell with the baseline %q", *base))
	}
	switch *format {
	case "json":
		if err := writeJSON(os.Stdout, pts); err != nil {
			return fail(err)
		}
	case "csv":
		fmt.Println("cfg_hash,config,tus,sidekind,side,cost_kb,speedup,benches,frontier")
		for _, p := range pts {
			fmt.Printf("%s,%s,%d,%s,%d,%.1f,%.4f,%d,%v\n",
				p.CfgHash, p.Config, p.TUs, p.SideKind, p.SideEnts, p.CostKB, p.Speedup, p.Benches, p.Frontier)
		}
	default:
		fmt.Printf("pareto: speedup vs %q, cost = TUs*(L1 + side) + L2 in KB\n\n", *base)
		fmt.Printf("%-10s %-11s %3s %-4s %4s %9s %8s %7s  %s\n",
			"CFGHASH", "CONFIG", "TUS", "SIDE", "ENTS", "COST(KB)", "SPEEDUP", "BENCHES", "")
		for _, p := range pts {
			mark := ""
			if p.Frontier {
				mark = "* frontier"
			}
			fmt.Printf("%-10s %-11s %3d %-4s %4d %9.1f %8.3f %7d  %s\n",
				p.CfgHash[:10], p.Config, p.TUs, p.SideKind, p.SideEnts, p.CostKB, p.Speedup, p.Benches, mark)
		}
	}
	return 0
}
