// Command perfbench is the perf-regression harness: it measures the
// simulator's figure benchmarks plus a raw cycle-loop microbenchmark and
// writes the numbers to a JSON report (BENCH_speed.json by default).
//
// Each entry records wall time per simulation (ns/op), allocations per
// simulation (allocs/op), the simulated cycle count per run, and simulated
// cycles per host second. Two of those — allocs/op and sim cycles/op — are
// bit-deterministic and host-independent, which makes them safe CI gates;
// the wall-clock numbers depend on the host and are gated only with
// -strict.
//
//	perfbench -out BENCH_speed.json                 # measure
//	perfbench -check perf/BENCH_baseline.json       # measure + compare
//	perfbench -check old.json -strict -tolerance 0.1
//
// With -check, the process exits nonzero if any benchmark regressed more
// than -tolerance (default 10%) against the baseline file: always for
// allocs/op and sim cycles/op, and additionally for ns/op under -strict.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/sample"
	"repro/internal/sta"
	"repro/internal/workload"
)

// Entry is one benchmark's measurement.
type Entry struct {
	Name            string  `json:"name"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	SimCyclesPerOp  float64 `json:"sim_cycles_per_op"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	Runs            int     `json:"runs"`
	// GoMaxProcs is set only on the scaling-curve entries that pin their
	// own CPU budget (gomax1/2/4); everything else runs under the ambient
	// budget recorded at the report level.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
}

// Report is the BENCH_speed.json document.
type Report struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	HostCPUs  int    `json:"host_cpus"`
	// GoMaxProcs is the CPU budget the measurements ran under. Wall-clock
	// numbers from different budgets are not comparable — the scaling
	// scenarios exist precisely because parallel stepping changes ns/op
	// with the core count — so -check refuses a baseline whose recorded
	// budget differs.
	GoMaxProcs int     `json:"gomaxprocs"`
	Results    []Entry `json:"results"`
	// SuiteWallSeconds is the wall time of one full `experiments -run all`
	// regeneration at scale 1 (only measured with -suite). The pre-overhaul
	// simulator took 116.8s on the development host; the committed baseline
	// records the post-overhaul time for the same machine.
	SuiteWallSeconds float64 `json:"suite_wall_seconds,omitempty"`
}

// scenario names one (benchmark, configuration) simulation to measure.
type scenario struct {
	name     string
	bench    string
	cfgName  config.Name
	tus      int
	interval uint64 // metrics sampling interval; 0 = no collector
	workers  int    // sta.Machine.Workers; 0 = machine default
	serial   bool   // force sequential stepping (DisableParallel)
	tap      bool   // attach a telemetry progress tap (sta.Machine.Tap)
	gomax    int    // pin runtime.GOMAXPROCS for this scenario; 0 = ambient
	sampled  bool   // run under the standard sampled-simulation regime
}

// sampleRegime is the fixed sampling configuration the sampled scenarios
// (and the CI accuracy smoke) use: 1k warmup + 2k measured instructions per
// 12k-instruction period, i.e. 25% detailed coverage.
func sampleRegime() sample.Config {
	return sample.Config{WarmupInsts: 1000, MeasureInsts: 2000, PeriodInsts: 12000}
}

func scenarios() []scenario {
	var out []scenario
	// Every figure benchmark under the full wth-wp-wec machine: this is the
	// configuration the paper's headline results (and the bulk of the
	// experiment suite's runtime) are built from.
	for _, w := range workload.All() {
		out = append(out, scenario{
			name:    "sim/" + w.Short + "/wth-wp-wec/8tu",
			bench:   w.Short,
			cfgName: config.WTHWPWEC,
			tus:     8,
		})
	}
	out = append(out,
		scenario{name: "sim/mcf/orig/8tu", bench: "mcf", cfgName: config.Orig, tus: 8},
		scenario{name: "sim/gzip/orig/1tu", bench: "gzip", cfgName: config.Orig, tus: 1},
		scenario{name: "sim/mcf/wth-wp-wec/8tu+metrics", bench: "mcf",
			cfgName: config.WTHWPWEC, tus: 8, interval: 10000},
		// The live-telemetry tap: its published cost is two atomic stores
		// plus a commit sweep every 1024 loop iterations, so this entry
		// should track the untapped mcf/wth-wp-wec/8tu numbers.
		scenario{name: "sim/mcf/wth-wp-wec/8tu+tap", bench: "mcf",
			cfgName: config.WTHWPWEC, tus: 8, tap: true},
	)
	// Scaling pairs: the same big machine stepped sequentially and with a
	// fixed four-worker pool. The worker count is explicit (not the auto
	// heuristic) so the parallel path engages — and allocs/op and
	// sim-cycles/op stay deterministic — regardless of the host's core
	// count; only the ns/op ratio between the pair members depends on
	// GOMAXPROCS.
	for _, tus := range []int{16, 32} {
		out = append(out,
			scenario{name: fmt.Sprintf("scale/mcf/wth-wp-wec/%dtu/serial", tus),
				bench: "mcf", cfgName: config.WTHWPWEC, tus: tus, serial: true},
			scenario{name: fmt.Sprintf("scale/mcf/wth-wp-wec/%dtu/par4", tus),
				bench: "mcf", cfgName: config.WTHWPWEC, tus: tus, workers: 4},
		)
	}
	// Parallel-scaling curve: the same par4 machine under pinned CPU
	// budgets. allocs/op and sim-cycles/op are identical across the three
	// (the compute/commit split is deterministic regardless of how many OS
	// threads back the workers); only ns/op moves, and the gomax1→2→4 ratio
	// IS the scaling curve BENCH_speed.json records. On a single-core host
	// the curve is flat — the deterministic gates still hold.
	for _, g := range []int{1, 2, 4} {
		out = append(out, scenario{
			name:    fmt.Sprintf("scale/mcf/wth-wp-wec/32tu/par4/gomax%d", g),
			bench:   "mcf", cfgName: config.WTHWPWEC, tus: 32, workers: 4, gomax: g,
		})
	}
	// Sampled simulation under the standard regime (25% detailed coverage):
	// the headline benchmark again, so the sampled-vs-detailed ns/op ratio
	// for sim/mcf/wth-wp-wec/8tu is readable straight off the report.
	out = append(out, scenario{
		name:  "sim/mcf/wth-wp-wec/8tu+sampled",
		bench: "mcf", cfgName: config.WTHWPWEC, tus: 8, sampled: true,
	})
	return out
}

// measure runs one scenario under testing.Benchmark.
func measure(sc scenario) (Entry, error) {
	w, err := workload.ByName(sc.bench)
	if err != nil {
		return Entry{}, err
	}
	prog, err := w.Build(1)
	if err != nil {
		return Entry{}, err
	}
	cfg := config.Main(sc.tus)
	if err := config.Apply(sc.cfgName, &cfg); err != nil {
		return Entry{}, err
	}
	return run(sc, cfg, prog)
}

func run(sc scenario, cfg sta.Config, prog *isa.Program) (Entry, error) {
	if sc.gomax > 0 {
		prev := runtime.GOMAXPROCS(sc.gomax)
		defer runtime.GOMAXPROCS(prev)
	}
	var cycles uint64
	var failure error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		cycles = 0
		for i := 0; i < b.N; i++ {
			m, err := sta.New(cfg, prog)
			if err != nil {
				failure = err
				b.FailNow()
			}
			m.Workers = sc.workers
			m.DisableParallel = sc.serial
			if sc.sampled {
				m.Sample = sampleRegime()
			}
			if sc.interval > 0 {
				m.Metrics = metrics.NewCollector(sc.interval)
			}
			if sc.tap {
				m.Tap = &sta.ProgressTap{}
			}
			r, err := m.Run()
			if err != nil {
				failure = err
				b.FailNow()
			}
			cycles += r.Stats.Cycles
		}
	})
	if failure != nil {
		return Entry{}, fmt.Errorf("%s: %w", sc.name, failure)
	}
	perOp := float64(cycles) / float64(res.N)
	return Entry{
		Name:            sc.name,
		NsPerOp:         float64(res.NsPerOp()),
		AllocsPerOp:     res.AllocsPerOp(),
		BytesPerOp:      res.AllocedBytesPerOp(),
		SimCyclesPerOp:  perOp,
		SimCyclesPerSec: perOp / (float64(res.NsPerOp()) / 1e9),
		Runs:            res.N,
		GoMaxProcs:      sc.gomax,
	}, nil
}

// microbench measures the raw per-cycle stepping overhead: a tight
// sequential ALU loop on one TU keeps the pipeline busy every cycle, so
// cycles/s here is the simulator's core-loop throughput with no memory
// system or threading activity in the way.
func microbench() (Entry, error) {
	b := asm.New()
	b.Li(1, 0)
	b.Li(2, 100_000)
	b.Label("loop")
	b.Op3(isa.ADD, 3, 1, 2)
	b.Op3(isa.XOR, 4, 3, 1)
	b.OpI(isa.SLLI, 5, 4, 1)
	b.Op3(isa.SUB, 6, 5, 3)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return Entry{}, err
	}
	cfg := config.Main(1)
	cfg.MaxCycles = 100_000_000
	return run(scenario{name: "micro/cycle-loop/1tu"}, cfg, prog)
}

func load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compare reports regressions of cur against base beyond tol. Allocations
// and simulated cycle counts are deterministic, so they are always gated;
// wall time only when strict is set.
func compare(base, cur *Report, tol float64, strict bool) []string {
	byName := make(map[string]Entry, len(base.Results))
	for _, e := range base.Results {
		byName[e.Name] = e
	}
	var bad []string
	for _, e := range cur.Results {
		b, ok := byName[e.Name]
		if !ok {
			continue
		}
		worse := func(metric string, now, then float64) {
			if then > 0 && now > then*(1+tol) {
				bad = append(bad, fmt.Sprintf("%s: %s regressed %.1f%% (%.0f -> %.0f)",
					e.Name, metric, (now/then-1)*100, then, now))
			}
		}
		worse("allocs/op", float64(e.AllocsPerOp), float64(b.AllocsPerOp))
		worse("sim-cycles/op", e.SimCyclesPerOp, b.SimCyclesPerOp)
		if strict {
			worse("ns/op", e.NsPerOp, b.NsPerOp)
		}
	}
	return bad
}

func main() {
	out := flag.String("out", "BENCH_speed.json", "write the measurement report here")
	check := flag.String("check", "", "baseline JSON to compare against; exit 1 on regression")
	tol := flag.Float64("tolerance", 0.10, "allowed relative regression before failing -check")
	strict := flag.Bool("strict", false, "also gate wall-clock ns/op (host-dependent) under -check")
	suite := flag.Bool("suite", false, "also time one full experiments regeneration (suite_wall_seconds)")
	history := flag.String("history", "perf/history", "also append a timestamped snapshot of the report into this directory (\"\" disables); simql diff -perf and simql report read the trend from here")
	flag.Parse()

	rep := &Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, sc := range scenarios() {
		e, err := measure(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%-36s %12.0f ns/op %8d allocs/op %14.0f cycles/s\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.SimCyclesPerSec)
		rep.Results = append(rep.Results, e)
	}
	e, err := microbench()
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	fmt.Printf("%-36s %12.0f ns/op %8d allocs/op %14.0f cycles/s\n",
		e.Name, e.NsPerOp, e.AllocsPerOp, e.SimCyclesPerSec)
	rep.Results = append(rep.Results, e)

	if *suite {
		start := time.Now()
		r := harness.NewRunner(1)
		for _, ex := range harness.All() {
			if err := ex.RunTo(r, io.Discard); err != nil {
				fmt.Fprintln(os.Stderr, "perfbench:", err)
				os.Exit(1)
			}
		}
		rep.SuiteWallSeconds = time.Since(start).Seconds()
		fmt.Printf("%-36s %38.1f s\n", "suite/experiments-all", rep.SuiteWallSeconds)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)

	if *history != "" {
		// The history directory accumulates one immutable snapshot per
		// measurement, named by the report's own UTC timestamp, so
		// `simql report` can plot the perf trend and `simql diff -perf`
		// can compare any two points. perf/.gitignore keeps snapshots out
		// of the repository; only the curated baseline is committed.
		if err := os.MkdirAll(*history, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		stamp := strings.Map(func(r rune) rune {
			if r == ':' {
				return '-'
			}
			return r
		}, rep.Generated)
		snap := filepath.Join(*history, stamp+".json")
		if err := os.WriteFile(snap, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", snap)
	}

	if *check != "" {
		base, err := load(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(1)
		}
		if base.HostCPUs != 0 && base.HostCPUs != rep.HostCPUs {
			// A different core count alone doesn't invalidate the gated
			// deterministic metrics, but it does shift wall-clock numbers,
			// so flag it for anyone reading ns/op deltas.
			fmt.Fprintf(os.Stderr,
				"perfbench: warning: baseline %s was measured on a %d-CPU host, this one has %d; "+
					"wall-clock (ns/op) comparisons are indicative only\n",
				*check, base.HostCPUs, rep.HostCPUs)
		}
		if base.GoMaxProcs != 0 && base.GoMaxProcs != rep.GoMaxProcs {
			fmt.Fprintf(os.Stderr,
				"perfbench: baseline %s was measured with GOMAXPROCS=%d but this run used %d; "+
					"wall-clock numbers are not comparable across CPU budgets — "+
					"re-run with GOMAXPROCS=%d or regenerate the baseline\n",
				*check, base.GoMaxProcs, rep.GoMaxProcs, base.GoMaxProcs)
			os.Exit(1)
		}
		if bad := compare(base, rep, *tol, *strict); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintln(os.Stderr, "REGRESSION:", line)
			}
			os.Exit(1)
		}
		fmt.Printf("check against %s passed (tolerance %.0f%%)\n", *check, *tol*100)
	}
}
