// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig11
//	experiments -run all [-scale 2] [-workers 8] [-v]
//
// Observability (see README "Observability" and "Live telemetry"):
//
//	experiments -run fig11 -v -interval 5000 -metrics-dir out/
//	experiments -run gain -v -attrib-dir attrib/
//	experiments -run all -cpuprofile cpu.pprof
//	experiments -run all -telemetry-addr 127.0.0.1:9180 -telemetry-dir tel/
//	experiments -span-timeline tel/spans.jsonl
//
// Robustness (see README "Robustness"): runs are supervised — a failed
// cell is quarantined and the rest of the suite still completes; Ctrl-C
// stops cleanly after flushing finished work. With a ledger, completed
// simulations are journaled as they finish and -resume replays them:
//
//	experiments -run all -ledger results.jsonl
//	experiments -run all -ledger results.jsonl -resume
//	experiments -run fig10 -timeout 2m
//	experiments -run fig10 -chaos-seed 7 -chaos-panic 1e-7
//
// Cross-run analytics (see README "Cross-run analytics"): with -archive,
// every completed cell writes a manifest into a content-addressed run
// archive that cmd/simql can list, diff, and render:
//
//	experiments -run fig11 -archive runs/
//	simql list -root runs/
//
// Workload synthesis (see README "Workload synthesis"): -run wgen drives
// the coverage-guided generator through the harness; every synthesized
// cell memoizes, journals, and archives under its genome-hash bench name:
//
//	experiments -run wgen -wgen-seed 7 -wgen-count 200 -wgen-corpus corpus/
//	experiments -run wgen -wgen-genome corpus/g0123456789abcdef.wgen
//
// Distributed sweeps (see README "Distributed sweeps"): -fleet-listen
// serves cells to worker processes under time-bounded leases; workers are
// `experiments -fleet-connect` (or `stasim -fleet-connect`). With no
// workers the sweep degrades gracefully to the in-process path:
//
//	experiments -run fig11 -fleet-listen 127.0.0.1:9381 -ledger results.jsonl -archive runs/
//	experiments -fleet-connect http://127.0.0.1:9381 -fleet-slots 2
//	experiments -fleet-connect http://127.0.0.1:9381 -fleet-chaos-seed 7 -fleet-chaos-drop 0.05
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/runstore"
	"repro/internal/sample"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		runID   = flag.String("run", "", "experiment id (table2, fig8..fig17) or 'all'")
		scale   = flag.Int("scale", 1, "workload scale factor (multiplies window counts)")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		verbose = flag.Bool("v", false, "print per-simulation progress")
		format  = flag.String("format", "table", "output format: table, csv, or json")

		interval   = flag.Uint64("interval", 0, "metrics sampling interval in cycles (0 = off; needs -metrics-dir to export)")
		metricsDir = flag.String("metrics-dir", "", "write one interval-series metrics JSON per simulation into this directory")
		attribDir  = flag.String("attrib-dir", "", "attach fill attribution and write one report JSON per simulation into this directory")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")

		telemetryAddr = flag.String("telemetry-addr", "", "serve live introspection HTTP (/metrics, /runs, /healthz, /debug/pprof) on this address")
		telemetryDir  = flag.String("telemetry-dir", "", "write the span journal (spans.jsonl) and flight-recorder dumps into this directory")
		spanTimeline  = flag.String("span-timeline", "", "convert a span JSONL file to Perfetto trace JSON (writes <file>.trace.json) and exit")

		sampleWarmup  = flag.Uint64("sample-warmup", 0, "sampled simulation: detailed-but-unmeasured warmup instructions per period")
		sampleMeasure = flag.Uint64("sample-measure", 0, "sampled simulation: measured detailed instructions per period (0 = fully detailed runs)")
		samplePeriod  = flag.Uint64("sample-period", 0, "sampled simulation: period length in instructions (must exceed warmup+measure; the rest fast-forwards)")
		sampleSeed    = flag.Uint64("sample-seed", 0, "sampled simulation: bootstrap RNG seed for the confidence intervals (0 = default)")

		timeout    = flag.Duration("timeout", 0, "wall-clock limit per simulation (0 = none)")
		ledgerPath = flag.String("ledger", "", "journal completed simulations to this JSONL file")
		resume     = flag.Bool("resume", false, "preload journaled results from -ledger before running")
		archiveDir = flag.String("archive", "", "archive one manifest per completed cell into this content-addressed run archive (query with simql)")

		wgenSeed   = flag.Uint64("wgen-seed", 1, "search seed for -run wgen (fixes the whole synthesis trajectory)")
		wgenCount  = flag.Int("wgen-count", 200, "generated programs per -run wgen invocation")
		wgenGenome = flag.String("wgen-genome", "", "run one synthesized workload (canonical line or .wgen file) instead of the search")
		wgenCorpus = flag.String("wgen-corpus", "", "write coverage-adding (and any failing) genomes into this directory")

		fleetListen    = flag.String("fleet-listen", "", "serve the fleet coordinator protocol on this address and distribute cells to connected workers")
		fleetLease     = flag.Duration("fleet-lease", 0, "fleet lease TTL (missed heartbeats past this revoke a worker's cell; 0 = 5s)")
		fleetFallback  = flag.Duration("fleet-fallback", 0, "fall back to in-process simulation if no worker joins within this long (0 = 3s)")
		fleetFailLimit = flag.Int("fleet-fail-limit", 0, "quarantine a cell after classified failures from this many distinct workers (0 = 3)")
		fleetConnect   = flag.String("fleet-connect", "", "run as a fleet worker against this coordinator URL instead of running experiments")
		fleetSlots     = flag.Int("fleet-slots", 1, "concurrent cells a fleet worker simulates")
		fleetName      = flag.String("fleet-name", "", "stable fleet worker name (default <hostname>-<pid>)")

		fleetChaosSeed  = flag.Uint64("fleet-chaos-seed", 0, "seed for the worker's network fault injector")
		fleetChaosDrop  = flag.Float64("fleet-chaos-drop", 0, "per-exchange probability of discarding an HTTP response after delivery")
		fleetChaosDelay = flag.Float64("fleet-chaos-delay", 0, "per-exchange probability of stalling an HTTP exchange")
		fleetChaosDup   = flag.Float64("fleet-chaos-dup", 0, "per-exchange probability of delivering a request twice")
		fleetChaosTrunc = flag.Float64("fleet-chaos-trunc", 0, "per-exchange probability of truncating a response body mid-JSON")
		fleetChaosKill  = flag.Float64("fleet-chaos-kill", 0, "per-claim-tick probability of abruptly killing the worker incarnation (leases expire, coordinator reassigns)")

		chaosSeed     = flag.Uint64("chaos-seed", 0, "seed for the deterministic fault injector")
		chaosPanic    = flag.Float64("chaos-panic", 0, "per-cycle machine-step panic probability")
		chaosCore     = flag.Float64("chaos-core-panic", 0, "per-step core panic probability")
		chaosLivelock = flag.Float64("chaos-livelock", 0, "per-cycle livelock probability (trips the watchdog)")
		chaosSlow     = flag.Float64("chaos-slow", 0, "per-cycle slow-cycle probability (trips -timeout)")
		chaosLedger   = flag.Float64("chaos-ledger-fail", 0, "per-append transient ledger write-failure probability")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *spanTimeline != "" {
		if err := convertSpans(*spanTimeline); err != nil {
			return fail(err)
		}
		return 0
	}

	if *fleetConnect != "" {
		// Worker mode: the process is a stateless simulation slave; the
		// coordinator owns the plan, the ledger, and the archive.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		err := fleet.RunWorker(ctx, fleet.WorkerConfig{
			URL:   *fleetConnect,
			Name:  *fleetName,
			Slots: *fleetSlots,
			Chaos: chaos.Config{
				Seed:       *fleetChaosSeed,
				NetDrop:    *fleetChaosDrop,
				NetDelay:   *fleetChaosDelay,
				NetDup:     *fleetChaosDup,
				NetTrunc:   *fleetChaosTrunc,
				WorkerKill: *fleetChaosKill,
			},
		})
		if err != nil && !errors.Is(err, context.Canceled) {
			return fail(err)
		}
		return 0
	}

	if *list || *runID == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *runID == "" {
			fmt.Println("\nrun one with: experiments -run <id>   (or -run all)")
		}
		return 0
	}

	// Ctrl-C cancels in-flight simulations; completed cells have already
	// been journaled and printed, so the suite resumes where it stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	r := harness.NewRunner(*scale)
	r.Workers = *workers
	r.Ctx = ctx
	r.Timeout = *timeout
	r.Chaos = chaos.Config{
		Seed:         *chaosSeed,
		MachinePanic: *chaosPanic,
		CorePanic:    *chaosCore,
		Livelock:     *chaosLivelock,
		SlowCycle:    *chaosSlow,
	}
	if *verbose {
		r.Verbose = os.Stderr
	}
	var tr *telemetry.Run
	if *telemetryAddr != "" || *telemetryDir != "" {
		var err error
		tr, err = telemetry.Start(telemetry.Config{Addr: *telemetryAddr, Dir: *telemetryDir})
		if err != nil {
			return fail(err)
		}
		defer tr.Close()
		r.Telemetry = tr
	}
	if *metricsDir != "" {
		if *interval == 0 {
			*interval = 10000
		}
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			return fail(err)
		}
		r.MetricsDir = *metricsDir
	}
	r.MetricsInterval = *interval
	r.Sample = sample.Config{
		WarmupInsts:  *sampleWarmup,
		MeasureInsts: *sampleMeasure,
		PeriodInsts:  *samplePeriod,
		Seed:         *sampleSeed,
	}
	if err := r.Sample.Validate(); err != nil {
		return fail(err)
	}
	if *attribDir != "" {
		if err := os.MkdirAll(*attribDir, 0o755); err != nil {
			return fail(err)
		}
		r.Attrib = true
		r.AttribDir = *attribDir
	}

	if *resume && *ledgerPath == "" {
		return fail(fmt.Errorf("-resume requires -ledger"))
	}
	if *archiveDir != "" {
		st, err := runstore.Open(*archiveDir)
		if err != nil {
			return fail(err)
		}
		defer st.Close()
		r.Archive = st
		r.ArchiveTool = "experiments"
		r.ArchiveRev = runstore.GitRev()
		if tr != nil {
			tr.SetArchive(st.Root())
		}
	}
	if *ledgerPath != "" {
		led, prior, err := harness.OpenLedger(*ledgerPath, *scale)
		if err != nil {
			return fail(err)
		}
		defer led.Close()
		if *chaosLedger > 0 {
			led.SetChaos(chaos.New(chaos.Config{Seed: *chaosSeed, LedgerFail: *chaosLedger}, "ledger"))
		}
		r.Ledger = led
		if tr != nil {
			tr.SetLedger(led.Path())
		}
		if *resume {
			r.Prefill(prior)
			if *verbose {
				fmt.Fprintf(os.Stderr, "resume: preloaded %d journaled results from %s\n", len(prior), *ledgerPath)
			}
		}
	}

	var coord *fleet.Coordinator
	if *fleetListen != "" {
		coord = fleet.NewCoordinator(fleet.Config{
			Scale:         *scale,
			LeaseTTL:      *fleetLease,
			FallbackAfter: *fleetFallback,
			FailLimit:     *fleetFailLimit,
			Attrib:        r.Attrib || *runID == "wgen",
			AttribTopN:    r.AttribTopN,
			Timeout:       *timeout,
			SimChaos:      r.Chaos,
			Archive:       r.Archive,
		})
		if err := coord.Start(*fleetListen); err != nil {
			return fail(err)
		}
		defer coord.Close()
		r.Remote = coord.Submit
		if tr != nil {
			tr.SetFleetSource(coord.FleetCounts)
		}
	}

	if *runID == "wgen" {
		return runWgen(r, coord, wgenOptions{
			seed:   *wgenSeed,
			count:  *wgenCount,
			genome: *wgenGenome,
			corpus: *wgenCorpus,
		})
	}

	exps := harness.All()
	if *runID != "all" {
		e, err := harness.ByID(*runID)
		if err != nil {
			return fail(err)
		}
		exps = []harness.Experiment{e}
	}
	var failed []string
	for _, e := range exps {
		if ctx.Err() != nil {
			break
		}
		start := time.Now()
		if *verbose {
			fmt.Fprintf(os.Stderr, "== %s: %s\n", e.ID, e.Title)
		}
		if tr != nil {
			tr.BeginSuite(e.ID)
		}
		tbl, err := e.Run(r)
		if tr != nil {
			tr.EndSuite(telemetry.OutcomeOf(err), err)
		}
		if err != nil {
			// Quarantined: report, keep the rest of the suite moving.
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			var se *harness.SuiteError
			if errors.As(err, &se) && *verbose {
				fmt.Fprint(os.Stderr, se.Detail())
			}
			failed = append(failed, e.ID)
			continue
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", e.ID, e.Title, tbl.CSV())
			continue
		case "json":
			js, err := tbl.JSON()
			if err != nil {
				return fail(err)
			}
			fmt.Println(js)
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		fmt.Print(tbl.String())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}

	if ctx.Err() != nil {
		hint := ""
		if *ledgerPath != "" {
			hint = fmt.Sprintf("; resume with -ledger %s -resume", *ledgerPath)
		}
		if tr != nil {
			hint += fmt.Sprintf(" (telemetry run %s)", tr.ID)
		}
		fmt.Fprintf(os.Stderr, "experiments: interrupted, finished work flushed%s\n", hint)
		return 130
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed: %s\n",
			len(failed), len(exps), strings.Join(failed, ", "))
		return 1
	}
	return 0
}

// convertSpans renders a span JSONL journal as Perfetto trace JSON next to
// it (<file>.trace.json), so suite spans load in the same UI as the
// cycle-level timeline from -timeline.
func convertSpans(path string) error {
	in, err := os.Open(path)
	if err != nil {
		return err
	}
	defer in.Close()
	outPath := path + ".trace.json"
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := telemetry.ConvertSpans(in, out); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}
