// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig11
//	experiments -run all [-scale 2] [-workers 8] [-v]
//
// Observability (see README "Observability"):
//
//	experiments -run fig11 -v -interval 5000 -metrics-dir out/
//	experiments -run gain -v -attrib-dir attrib/
//	experiments -run all -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		run     = flag.String("run", "", "experiment id (table2, fig8..fig17) or 'all'")
		scale   = flag.Int("scale", 1, "workload scale factor (multiplies window counts)")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		verbose = flag.Bool("v", false, "print per-simulation progress")
		format  = flag.String("format", "table", "output format: table, csv, or json")

		interval   = flag.Uint64("interval", 0, "metrics sampling interval in cycles (0 = off; needs -metrics-dir to export)")
		metricsDir = flag.String("metrics-dir", "", "write one interval-series metrics JSON per simulation into this directory")
		attribDir  = flag.String("attrib-dir", "", "attach fill attribution and write one report JSON per simulation into this directory")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with: experiments -run <id>   (or -run all)")
		}
		return
	}

	r := harness.NewRunner(*scale)
	r.Workers = *workers
	if *verbose {
		r.Verbose = os.Stderr
	}
	if *metricsDir != "" {
		if *interval == 0 {
			*interval = 10000
		}
		fatal(os.MkdirAll(*metricsDir, 0o755))
		r.MetricsDir = *metricsDir
	}
	r.MetricsInterval = *interval
	if *attribDir != "" {
		fatal(os.MkdirAll(*attribDir, 0o755))
		r.Attrib = true
		r.AttribDir = *attribDir
	}

	exps := harness.All()
	if *run != "all" {
		e, err := harness.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []harness.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		if *verbose {
			fmt.Fprintf(os.Stderr, "== %s: %s\n", e.ID, e.Title)
		}
		tbl, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", e.ID, e.Title, tbl.CSV())
			continue
		case "json":
			js, err := tbl.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(js)
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		fmt.Print(tbl.String())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		fatal(err)
		runtime.GC()
		fatal(pprof.WriteHeapProfile(f))
		fatal(f.Close())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
