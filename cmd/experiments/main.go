// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig11
//	experiments -run all [-scale 2] [-workers 8] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		run     = flag.String("run", "", "experiment id (table2, fig8..fig17) or 'all'")
		scale   = flag.Int("scale", 1, "workload scale factor (multiplies window counts)")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		verbose = flag.Bool("v", false, "print per-simulation progress")
		format  = flag.String("format", "table", "output format: table, csv, or json")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun one with: experiments -run <id>   (or -run all)")
		}
		return
	}

	r := harness.NewRunner(*scale)
	r.Workers = *workers
	if *verbose {
		r.Verbose = os.Stderr
	}

	exps := harness.All()
	if *run != "all" {
		e, err := harness.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []harness.Experiment{e}
	}
	for _, e := range exps {
		start := time.Now()
		tbl, err := e.Run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n%s\n", e.ID, e.Title, tbl.CSV())
			continue
		case "json":
			js, err := tbl.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(js)
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
		fmt.Print(tbl.String())
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
