// The wgen mode: `experiments -run wgen` drives the coverage-guided
// workload-synthesis loop through the full harness — every generated
// program becomes a supervised, memoized cell whose bench name embeds its
// genome hash, so ledger entries and archive manifests of synthesized runs
// are greppable by genome. Each simulated cell is differentially validated
// against the functional reference by the harness; any divergence (or
// panic, or watchdog trip) stops the loop, reports the failing genome's
// canonical line, and exits nonzero.
//
//	experiments -run wgen -wgen-seed 7 -wgen-count 200
//	experiments -run wgen -wgen-seed 7 -wgen-count 200 -wgen-corpus corpus/ -archive runs/
//	experiments -run wgen -wgen-genome 'wgen1 seed=0x1 win=2x4 ...'
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/attrib"
	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/wgen"
)

type wgenOptions struct {
	seed   uint64
	count  int
	genome string // single canonical line or .wgen file; skips the search
	corpus string // directory for coverage-adding (and failing) genomes
}

// runWgen executes the synthesis loop on an already-configured runner, so
// -ledger, -archive, -chaos-*, -workers, and -telemetry-* compose with it.
// With a fleet coordinator attached, each synthesized program's canonical
// genome line is registered as its shard spec, so generated cells
// distribute to workers like any benchmark.
func runWgen(r *harness.Runner, coord *fleet.Coordinator, opts wgenOptions) int {
	cfg := config.Main(8)
	if err := config.Apply(config.WTHWPWEC, &cfg); err != nil {
		return fail(err)
	}
	// The coverage signal spans its attribution dimensions only with the
	// collector attached.
	r.Attrib = true

	runOne := func(g wgen.Genome, p *isa.Program) (*stats.Sim, *attrib.Report, error) {
		bench := g.BenchName()
		r.RegisterProgram(bench, p)
		if coord != nil {
			coord.RegisterSpec(bench, g.Canonical())
		}
		res, err := r.Result(bench, cfg)
		if err != nil {
			return nil, nil, err
		}
		rep, err := r.AttribReport(bench, cfg)
		if err != nil {
			return nil, nil, err
		}
		return &res.Stats, rep, nil
	}

	if opts.genome != "" {
		g, err := wgen.Load(opts.genome)
		if err != nil {
			return fail(err)
		}
		p, err := g.Program()
		if err != nil {
			return fail(err)
		}
		sim, rep, err := runOne(g, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wgen: %s failed: %v\n", g.Canonical(), err)
			return 1
		}
		sig := wgen.Buckets(sim, rep)
		fmt.Printf("%s\n%s\ncycles %d, commits %d, %d behavior buckets:\n",
			g.BenchName(), g.Canonical(), sim.Cycles, sim.Commits, len(sig))
		for _, b := range sig {
			fmt.Println("  " + b)
		}
		return 0
	}

	s := wgen.NewSearch(opts.seed, runOne)
	var failing *wgen.Genome
	var failErr error
	for i := 0; i < opts.count; i++ {
		res, err := s.Step()
		if err != nil {
			g := res.Genome
			failing, failErr = &g, err
			break
		}
		fmt.Printf("wgen[%04d] %s cov %d (+%d)\n", i, res.Genome.Hash(), res.Coverage, res.New)
	}

	if opts.corpus != "" {
		if err := os.MkdirAll(opts.corpus, 0o755); err != nil {
			return fail(err)
		}
		for _, g := range s.Corpus() {
			path := filepath.Join(opts.corpus, g.Hash()+".wgen")
			if err := os.WriteFile(path, []byte(g.Canonical()+"\n"), 0o644); err != nil {
				return fail(err)
			}
		}
		if failing != nil {
			path := filepath.Join(opts.corpus, "failing-"+failing.Hash()+".wgen")
			if err := os.WriteFile(path, []byte(failing.Canonical()+"\n"), 0o644); err != nil {
				return fail(err)
			}
		}
	}

	st := s.Stats()
	fmt.Printf("wgen: %d programs, %d behavior buckets, corpus %d (explore %d steps +%d, exploit %d steps +%d)\n",
		s.Steps(), s.Coverage().Count(), len(s.Corpus()),
		st.ExploreSteps, st.ExploreGained, st.ExploitSteps, st.ExploitGained)
	if failing != nil {
		fmt.Fprintf(os.Stderr, "wgen: FAILING GENOME %s: %v\n", failing.Canonical(), failErr)
		fmt.Fprintf(os.Stderr, "wgen: replay with: stasim -wgen-genome '%s' -config wth-wp-wec\n", failing.Canonical())
		return 1
	}
	return 0
}
