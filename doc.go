// Package repro is a from-scratch Go reproduction of "Using Incorrect
// Speculation to Prefetch Data in a Concurrent Multithreaded Processor"
// (Chen, Sendag, Lilja; IPDPS 2003): a cycle-level simulator of the
// superthreaded architecture with wrong-path and wrong-thread execution and
// the Wrong Execution Cache (WEC), six SPEC2000-archetype benchmark
// kernels, and a harness that regenerates every table and figure of the
// paper's evaluation.
//
// Start with README.md, DESIGN.md (system inventory and per-experiment
// index), and EXPERIMENTS.md (paper-versus-measured results). The
// benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=Fig11 -benchtime=1x .
//
// The command-line tools live under cmd/:
//
//	go run ./cmd/stasim -bench mcf -config wth-wp-wec
//	go run ./cmd/experiments -run all
package repro
