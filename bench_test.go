package repro

import (
	"testing"

	"repro/internal/attrib"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/sta"
	"repro/internal/workload"
)

// ---- Figure/table regeneration benchmarks ------------------------------
//
// One benchmark per table and figure of the paper's evaluation (DESIGN.md
// per-experiment index). Each iteration regenerates the experiment from
// scratch; run with -benchtime=1x for a single regeneration, e.g.
//
//	go test -bench=Fig11 -benchtime=1x .
//
// The reported ns/op is the wall time of the full experiment (all
// benchmark x configuration simulations it requires).

func benchExperiment(b *testing.B, id string) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(1)
		e, err := harness.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }

// ---- Simulator throughput micro-benchmarks -----------------------------
//
// These measure the simulator itself (simulated cycles per wall second),
// useful when working on the core or memory-system code.

func benchSimulate(b *testing.B, bench string, cfgName config.Name, tus int, interval uint64) {
	w, err := workload.ByName(bench)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Main(tus)
	if err := config.Apply(cfgName, &cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m, err := sta.New(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		if interval > 0 {
			m.Metrics = metrics.NewCollector(interval)
		}
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/run")
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

func BenchmarkSimMcfOrig8TU(b *testing.B)   { benchSimulate(b, "mcf", config.Orig, 8, 0) }
func BenchmarkSimMcfWEC8TU(b *testing.B)    { benchSimulate(b, "mcf", config.WTHWPWEC, 8, 0) }
func BenchmarkSimEquakeWEC8TU(b *testing.B) { benchSimulate(b, "equake", config.WTHWPWEC, 8, 0) }
func BenchmarkSimGzipOrig1TU(b *testing.B)  { benchSimulate(b, "gzip", config.Orig, 1, 0) }
func BenchmarkSimParserNLP8TU(b *testing.B) { benchSimulate(b, "parser", config.NLP, 8, 0) }

// BenchmarkSimMcfWEC8TUMetrics measures the overhead of a fully attached
// metrics collector (registry + sampler + histograms, 10k-cycle interval).
// Compare against BenchmarkSimMcfWEC8TU: the delta is the instrumentation
// cost, which should stay within run-to-run noise for uninstrumented runs
// and in the low single digits percent when attached.
func BenchmarkSimMcfWEC8TUMetrics(b *testing.B) {
	benchSimulate(b, "mcf", config.WTHWPWEC, 8, 10000)
}

// BenchmarkSimMcfWEC8TUAttrib measures the overhead of an attached
// attribution collector (block provenance + shadow table, no metrics).
// Compare against BenchmarkSimMcfWEC8TU; with the collector detached the
// instrumentation is a nil check per hook site and must not move the
// baseline number.
func BenchmarkSimMcfWEC8TUAttrib(b *testing.B) {
	w, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Main(8)
	if err := config.Apply(config.WTHWPWEC, &cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m, err := sta.New(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		m.Attrib = attrib.NewCollector()
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "cycles/run")
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}
